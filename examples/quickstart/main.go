// Quickstart: build a small behavior, compile it, allocate a datapath
// under the extended binding model, verify it by simulation, and print
// the costs.
package main

import (
	"fmt"
	"log"

	"salsa"
	"salsa/internal/cdfg"
)

func main() {
	// Behavior: a second-order polynomial y = (x + a)·x + b, as a CDFG.
	g := cdfg.New("poly2")
	x := g.Input("x")
	a := g.Input("a")
	b := g.Input("b")
	s := g.Add("s", x, a) // x + a
	m := g.Mul("m", s, x) // (x + a)·x
	y := g.Add("y", m, b) // ... + b
	g.Output("y_out", y)

	// Compile: schedule at the default length (critical path + 2) with
	// minimal functional units and registers.
	des, err := salsa.Compile(g, salsa.Params{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled %q in %d control steps, minimum %d registers\n",
		g.Name, des.Steps(), des.MinRegisters())

	// Allocate under both binding models.
	salsaRes, tradRes, err := des.AllocateBoth(1, 3)
	if err != nil {
		log.Fatal(err)
	}
	if tradRes != nil {
		fmt.Println("traditional model:", salsa.Summary(tradRes))
	}
	fmt.Println("extended model:   ", salsa.Summary(salsaRes))

	// Verify by cycle-accurate simulation, then run concrete inputs.
	if err := des.Verify(salsaRes); err != nil {
		log.Fatal(err)
	}
	out, err := des.Simulate(salsaRes, salsa.Env{"x": 3, "a": 4, "b": 5}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated y(3; a=4, b=5) = %d (want %d)\n", out["y_out"], (3+4)*3+5)

	// Emit the structural netlist.
	nl, err := des.EmitRTL(salsaRes, "poly2_dp")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("netlist: %d FUs, %d registers, %d merged muxes (%d lines of RTL)\n",
		nl.FUs, nl.Regs, nl.Muxes, countLines(nl.Text))
}

func countLines(s string) int {
	n := 0
	for _, r := range s {
		if r == '\n' {
			n++
		}
	}
	return n
}
