package salsa_test

import (
	"fmt"

	"salsa"
	"salsa/internal/cdfg"
	"salsa/internal/library"
	"salsa/internal/workloads"
)

// ExampleCompile shows the minimal flow: build a behavior, compile,
// allocate, simulate.
func ExampleCompile() {
	g := cdfg.New("mac")
	x := g.Input("x")
	y := g.Input("y")
	acc := g.State("acc")
	sum := g.Add("sum", g.Mul("prod", x, y), acc)
	g.SetNext(acc, sum)
	g.Output("out", sum)

	des, err := salsa.Compile(g, salsa.Params{})
	if err != nil {
		panic(err)
	}
	o := salsa.SALSAOptions(1)
	o.MovesPerTrial = 200
	o.MaxTrials = 4
	res, err := des.Allocate(o, 1)
	if err != nil {
		panic(err)
	}
	out, err := des.Simulate(res, salsa.Env{"x": 3, "y": 4, "acc": 10}, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("out =", out["out"])
	// Output: out = 22
}

// ExampleDesign_AllocateBoth compares the two binding models on a
// standard benchmark.
func ExampleDesign_AllocateBoth() {
	des, err := salsa.Compile(workloads.Tseng(), salsa.Params{ExtraRegisters: 1})
	if err != nil {
		panic(err)
	}
	salsaRes, tradRes, err := des.AllocateBoth(1, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("extended never loses:", tradRes == nil || salsaRes.Cost.Total <= tradRes.Cost.Total)
	// Output: extended never loses: true
}

// ExampleDesign_EmitRTL renders an allocation as Verilog and reports
// the module interface.
func ExampleDesign_EmitRTL() {
	des, err := salsa.Compile(workloads.Diffeq(), salsa.Params{ExtraRegisters: 1})
	if err != nil {
		panic(err)
	}
	o := salsa.SALSAOptions(1)
	o.MovesPerTrial = 150
	o.MaxTrials = 3
	res, err := des.Allocate(o, 1)
	if err != nil {
		panic(err)
	}
	nl, err := des.EmitRTL(res, "diffeq_dp")
	if err != nil {
		panic(err)
	}
	fmt.Println(nl.ModuleName, "FUs:", nl.FUs, "regs:", nl.Regs)
	// Output: diffeq_dp FUs: 3 regs: 7
}

// Example_areaReport grounds an allocation in gate equivalents.
func Example_areaReport() {
	des, err := salsa.Compile(workloads.FIR8(), salsa.Params{ExtraRegisters: 1})
	if err != nil {
		panic(err)
	}
	o := salsa.SALSAOptions(2)
	o.MovesPerTrial = 150
	o.MaxTrials = 3
	res, err := des.Allocate(o, 1)
	if err != nil {
		panic(err)
	}
	rep, err := library.Analyze(library.Default(), res.Binding)
	if err != nil {
		panic(err)
	}
	fmt.Println("multiplier area dominates:", rep.MulArea > rep.RegArea+rep.MuxArea)
	// Output: multiplier area dominates: true
}
