// Command gen-testdata regenerates the JSON CDFG corpus in testdata/
// from the built-in benchmark constructors. The files double as example
// inputs for `salsa -cdfg`.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"salsa/internal/workloads"
)

func main() {
	dir := "testdata"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	all := workloads.All()
	names := make([]string, 0, len(all))
	for name := range all {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := all[name]()
		data, err := g.MarshalJSON()
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}
}
