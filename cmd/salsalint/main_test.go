package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"salsa/internal/lint"
)

// fixture resolves a package directory inside the analyzer fixture
// module (internal/lint/testdata/src).
func fixture(t *testing.T, pkg string) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("..", "..", "internal", "lint", "testdata", "src", pkg))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// TestFixtureExitCodes drives the real entry point against each
// analyzer's negative fixture (must exit 1) and a clean package (must
// exit 0) — the same contract CI relies on.
func TestFixtureExitCodes(t *testing.T) {
	cases := []struct {
		name   string
		enable string
		pkg    string
		want   int
	}{
		{"detrand-global", "detrand", "badrand", 1},
		{"detrand-clock", "detrand", "internal/core", 1},
		{"maporder", "maporder", "maporder", 1},
		{"mutguard", "mutguard", "badmut", 1},
		{"costmut", "costmut", "badcostmut", 1},
		{"atomicfield", "atomicfield", "atomicfield", 1},
		{"checkerr", "checkerr", "checkerr", 1},
		{"lockguard", "lockguard", "lockguard", 1},
		{"ctxflow", "ctxflow", "internal/service", 1},
		{"clean-package", "", "internal/binding", 0},
		{"clean-under-other-analyzer", "detrand", "badmut", 0},
		{"lockguard-skips-unannotated", "lockguard", "badmut", 0},
		{"ctxflow-skips-unscoped", "ctxflow", "lockguard", 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			args := []string{}
			if c.enable != "" {
				args = append(args, "-enable", c.enable)
			}
			args = append(args, fixture(t, c.pkg))
			var out, errb bytes.Buffer
			if got := run(args, &out, &errb); got != c.want {
				t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					got, c.want, out.String(), errb.String())
			}
		})
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-json", "-enable", "mutguard", fixture(t, "badmut")}, &out, &errb); got != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", got, errb.String())
	}
	var findings []lint.Finding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON finding array: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("JSON output holds no findings")
	}
	for _, f := range findings {
		if f.Analyzer != "mutguard" {
			t.Errorf("finding from %s leaked through -enable mutguard", f.Analyzer)
		}
	}
}

// documentedSuite is the analyzer set README and DESIGN.md promise, in
// suite order. TestAnalyzerRegistry pins -list to exactly this set so
// a silently-unregistered (or silently-added) analyzer fails the
// build, not just the docs.
var documentedSuite = []string{
	"detrand", "maporder", "mutguard", "graphmut", "costmut",
	"atomicfield", "checkerr", "lockguard", "ctxflow",
}

func TestAnalyzerRegistry(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-list"}, &out, &errb); got != 0 {
		t.Fatalf("-list exit = %d, want 0; stderr: %s", got, errb.String())
	}
	var listed []string
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			t.Fatalf("-list printed a blank line:\n%s", out.String())
		}
		listed = append(listed, fields[0])
	}
	if len(listed) != len(documentedSuite) {
		t.Fatalf("-list shows %d analyzers %v, documented set has %d %v",
			len(listed), listed, len(documentedSuite), documentedSuite)
	}
	for i, name := range documentedSuite {
		if listed[i] != name {
			t.Errorf("-list[%d] = %s, documented suite has %s", i, listed[i], name)
		}
	}
}

func TestListAndBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-list"}, &out, &errb); got != 0 {
		t.Fatalf("-list exit = %d, want 0", got)
	}
	for _, name := range documentedSuite {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output misses analyzer %s", name)
		}
	}
	if got := run([]string{"-enable", "nosuch"}, &out, &errb); got != 2 {
		t.Fatalf("unknown analyzer exit = %d, want 2", got)
	}
	if got := run([]string{"-disable", strings.Join(documentedSuite, ",")}, &out, &errb); got != 2 {
		t.Fatalf("empty selection exit = %d, want 2", got)
	}
}
