package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"salsa/internal/lint"
)

// fixture resolves a package directory inside the analyzer fixture
// module (internal/lint/testdata/src).
func fixture(t *testing.T, pkg string) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("..", "..", "internal", "lint", "testdata", "src", pkg))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// TestFixtureExitCodes drives the real entry point against each
// analyzer's negative fixture (must exit 1) and a clean package (must
// exit 0) — the same contract CI relies on.
func TestFixtureExitCodes(t *testing.T) {
	cases := []struct {
		name   string
		enable string
		pkg    string
		want   int
	}{
		{"detrand-global", "detrand", "badrand", 1},
		{"detrand-clock", "detrand", "internal/core", 1},
		{"maporder", "maporder", "maporder", 1},
		{"mutguard", "mutguard", "badmut", 1},
		{"costmut", "costmut", "badcostmut", 1},
		{"atomicfield", "atomicfield", "atomicfield", 1},
		{"checkerr", "checkerr", "checkerr", 1},
		{"clean-package", "", "internal/binding", 0},
		{"clean-under-other-analyzer", "detrand", "badmut", 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			args := []string{}
			if c.enable != "" {
				args = append(args, "-enable", c.enable)
			}
			args = append(args, fixture(t, c.pkg))
			var out, errb bytes.Buffer
			if got := run(args, &out, &errb); got != c.want {
				t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					got, c.want, out.String(), errb.String())
			}
		})
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-json", "-enable", "mutguard", fixture(t, "badmut")}, &out, &errb); got != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", got, errb.String())
	}
	var findings []lint.Finding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON finding array: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("JSON output holds no findings")
	}
	for _, f := range findings {
		if f.Analyzer != "mutguard" {
			t.Errorf("finding from %s leaked through -enable mutguard", f.Analyzer)
		}
	}
}

func TestListAndBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-list"}, &out, &errb); got != 0 {
		t.Fatalf("-list exit = %d, want 0", got)
	}
	for _, name := range []string{"detrand", "maporder", "mutguard", "graphmut", "costmut", "atomicfield", "checkerr"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output misses analyzer %s", name)
		}
	}
	if got := run([]string{"-enable", "nosuch"}, &out, &errb); got != 2 {
		t.Fatalf("unknown analyzer exit = %d, want 2", got)
	}
	if got := run([]string{"-disable", "detrand,maporder,mutguard,graphmut,costmut,atomicfield,checkerr"}, &out, &errb); got != 2 {
		t.Fatalf("empty selection exit = %d, want 2", got)
	}
}
