// Command salsalint runs the project's static-analysis suite
// (internal/lint) over module packages and reports contract
// violations: nondeterministic randomness, order-sensitive map
// iteration, binding mutations outside the move layer, mixed
// atomic/plain field access, discarded legality-check errors,
// mutex-guarded fields touched without their guard (lockguard), and
// context-flow violations in the serving layers (ctxflow).
//
// Usage:
//
//	salsalint [flags] [packages]
//
// Packages are directories relative to the working directory,
// optionally ending in /... for recursion (default ./...). Exit code 0
// means no findings, 1 means findings, 2 means the packages failed to
// load or type-check.
//
//	-json              emit findings as a JSON array
//	-enable  a,b,...   run only the named analyzers
//	-disable a,b,...   skip the named analyzers
//	-list              print the suite and exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"salsa/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("salsalint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := selectAnalyzers(lint.Suite(), *enable, *disable)
	if err != nil {
		fmt.Fprintln(stderr, "salsalint:", err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "salsalint:", err)
		return 2
	}
	// The module root is resolved from the first pattern's directory so
	// the driver also works when pointed into a fixture module.
	probe := strings.TrimSuffix(strings.TrimSuffix(patterns[0], "..."), "/")
	if probe == "" || probe == "." {
		probe = cwd
	}
	root, err := lint.FindModuleRoot(probe)
	if err != nil {
		fmt.Fprintln(stderr, "salsalint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "salsalint:", err)
		return 2
	}
	pkgs, err := loader.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "salsalint:", err)
		return 2
	}

	findings := lint.Run(pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "salsalint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(stdout, "salsalint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers applies -enable / -disable to the suite.
func selectAnalyzers(suite []*lint.Analyzer, enable, disable string) ([]*lint.Analyzer, error) {
	byName := make(map[string]*lint.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	names := func(csv string) ([]string, error) {
		var out []string
		for _, n := range strings.Split(csv, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if byName[n] == nil {
				return nil, fmt.Errorf("unknown analyzer %q", n)
			}
			out = append(out, n)
		}
		return out, nil
	}
	if enable != "" {
		on, err := names(enable)
		if err != nil {
			return nil, err
		}
		var out []*lint.Analyzer
		for _, a := range suite { // preserve suite order
			for _, n := range on {
				if a.Name == n {
					out = append(out, a)
					break
				}
			}
		}
		suite = out
	}
	if disable != "" {
		off, err := names(disable)
		if err != nil {
			return nil, err
		}
		var out []*lint.Analyzer
		for _, a := range suite {
			skip := false
			for _, n := range off {
				if a.Name == n {
					skip = true
					break
				}
			}
			if !skip {
				out = append(out, a)
			}
		}
		suite = out
	}
	if len(suite) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return suite, nil
}
