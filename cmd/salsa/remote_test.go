package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"salsa/internal/service"
)

// TestRemoteMatchesLocalJSON: `salsa -remote <url>` must print the
// exact bytes `salsa -json` prints for the same request — the service
// round trip is invisible — even when the service sheds the first
// attempt with a 503 (the client retries).
func TestRemoteMatchesLocalJSON(t *testing.T) {
	srv := service.New(service.Config{})
	var calls atomic.Int64
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/allocate") && calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			if _, werr := w.Write([]byte(`{"error":"injected"}`)); werr != nil {
				t.Error(werr)
			}
			return
		}
		srv.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(flaky)
	defer ts.Close()

	args := []string{"-bench", "figure1", "-restarts", "2", "-seed", "1", "-verify=false"}
	var local, remote, stderr bytes.Buffer
	if code := run(append(args, "-json"), &local, &stderr); code != 0 {
		t.Fatalf("local -json exit %d, stderr: %s", code, stderr.String())
	}
	stderr.Reset()
	if code := run(append(args, "-remote", ts.URL), &remote, &stderr); code != 0 {
		t.Fatalf("-remote exit %d, stderr: %s", code, stderr.String())
	}
	if !bytes.Equal(local.Bytes(), remote.Bytes()) {
		t.Errorf("-remote output differs from local -json:\n got %s\nwant %s", remote.Bytes(), local.Bytes())
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("allocate round trips = %d, want 2 (one shed, one served)", got)
	}
}

// TestRemoteVerboseShowsRouterHeaders: with -v, the provenance headers
// a cluster router stamps (X-Salsa-Shard, X-Salsa-Cache) surface on
// stderr, while stdout stays the bare result document.
func TestRemoteVerboseShowsRouterHeaders(t *testing.T) {
	srv := service.New(service.Config{})
	routed := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// What a `salsad -route` front end adds to a proxied response.
		w.Header().Set("X-Salsa-Shard", "http://backend-2:8080")
		srv.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(routed)
	defer ts.Close()

	args := []string{"-bench", "figure1", "-restarts", "2", "-seed", "1", "-verify=false"}
	var local, remote, stderr bytes.Buffer
	if code := run(append(args, "-json"), &local, &stderr); code != 0 {
		t.Fatalf("local -json exit %d, stderr: %s", code, stderr.String())
	}
	stderr.Reset()
	if code := run(append(args, "-remote", ts.URL, "-v"), &remote, &stderr); code != 0 {
		t.Fatalf("-remote -v exit %d, stderr: %s", code, stderr.String())
	}
	if !bytes.Equal(local.Bytes(), remote.Bytes()) {
		t.Errorf("-v changed stdout:\n got %s\nwant %s", remote.Bytes(), local.Bytes())
	}
	for _, want := range []string{"shard=http://backend-2:8080", "cache=miss", "attempts=1"} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("stderr %q lacks %q", stderr.String(), want)
		}
	}

	// Without -v, provenance stays silent.
	stderr.Reset()
	remote.Reset()
	if code := run(append(args, "-remote", ts.URL), &remote, &stderr); code != 0 {
		t.Fatalf("-remote exit %d, stderr: %s", code, stderr.String())
	}
	if strings.Contains(stderr.String(), "shard=") {
		t.Errorf("provenance printed without -v: %q", stderr.String())
	}
}

// TestRemoteRejectedRequest: a non-retryable rejection (HTTP 400) is a
// clean immediate failure carrying the server's message — no retries.
func TestRemoteRejectedRequest(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		if _, werr := w.Write([]byte(`{"error":"graph rejected"}`)); werr != nil {
			t.Error(werr)
		}
	}))
	defer ts.Close()
	var stdout, stderr bytes.Buffer
	code := run([]string{"-bench", "figure1", "-remote", ts.URL}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "graph rejected") {
		t.Errorf("stderr %q lost the server's message", stderr.String())
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("made %d requests, want 1 (400 must not be retried)", got)
	}
}
