package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"salsa"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestJSONModeGolden locks the -json output byte-for-byte: the schema
// is shared with the salsad service, carries no wall-clock fields, and
// allocation is deterministic, so the exact bytes are reproducible.
func TestJSONModeGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-bench", "figure1", "-restarts", "2", "-seed", "1", "-json", "-verify=false"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	golden := filepath.Join("testdata", "figure1_result.json")
	if *update {
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("-json output drifted from golden file (rerun with -update if intended):\n got %s\nwant %s",
			stdout.Bytes(), want)
	}

	// The document must decode as the shared schema with sane content.
	var rj salsa.ResultJSON
	if err := json.Unmarshal(stdout.Bytes(), &rj); err != nil {
		t.Fatalf("output is not a ResultJSON: %v", err)
	}
	if rj.Graph != "figure1" || rj.Mode != "salsa" || rj.Seed != 1 || rj.Restarts != 2 {
		t.Errorf("echoed request fields wrong: %+v", rj)
	}
	if rj.Partial {
		t.Error("unconstrained run reported partial")
	}
	if len(rj.Fingerprint) != 64 {
		t.Errorf("fingerprint %q is not a sha256 hex digest", rj.Fingerprint)
	}
}

// TestJSONModeVerify: -json respects -verify (on by default) and stays
// silent on stdout apart from the result document.
func TestJSONModeVerify(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-bench", "diffeq", "-restarts", "2", "-json"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) != 1 {
		t.Errorf("-json printed %d stdout lines, want exactly the result document:\n%s", len(lines), stdout.String())
	}
	var rj salsa.ResultJSON
	if err := json.Unmarshal([]byte(lines[0]), &rj); err != nil {
		t.Fatalf("output is not a ResultJSON: %v", err)
	}
}

// TestRunErrors: flag and input failures exit non-zero via stderr, not
// panics, for both prose and JSON modes.
func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-bench", "nope"},
		{"-bench", "figure1", "-mode", "quantum", "-json"},
		{"-bench", "figure1", "-cdfg", "also.json"},
		{},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code == 0 {
			t.Errorf("run(%v) succeeded, want failure", args)
		}
		if stderr.Len() == 0 {
			t.Errorf("run(%v) failed without a diagnostic", args)
		}
	}
}
