// Command salsa schedules and allocates a CDFG with the extended
// binding model, reporting the datapath cost and optionally emitting a
// DOT rendering of the graph, a structural RTL netlist, and a
// simulation-based verification of the allocation.
//
// Usage:
//
//	salsa -bench ewf -steps 19 -extra-regs 1 -rtl ewf.v
//	salsa -cdfg mydesign.json -mode both -verify
//	salsa -bench diffeq -json            # machine-readable result
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"salsa"
	"salsa/internal/cdfg"
	"salsa/internal/client"
	"salsa/internal/core"
	"salsa/internal/datapath"
	"salsa/internal/dpsim"
	"salsa/internal/engine"
	"salsa/internal/library"
	"salsa/internal/lifetime"
	"salsa/internal/place"
	"salsa/internal/report"
	"salsa/internal/rtl"
	"salsa/internal/sched"
	"salsa/internal/service"
	"salsa/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("salsa", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		benchName = fs.String("bench", "", "built-in benchmark: ewf, dct, fir16, fir8, arf, diffeq, tseng, figure1")
		cdfgPath  = fs.String("cdfg", "", "CDFG JSON file (alternative to -bench)")
		steps     = fs.Int("steps", 0, "schedule length in control steps (default: critical path + 2)")
		pipelined = fs.Bool("pipelined", false, "use pipelined multipliers (latency 2, initiation interval 1)")
		extraRegs = fs.Int("extra-regs", 0, "registers beyond the minimum")
		seed      = fs.Int64("seed", 1, "random seed for the iterative improvement search")
		restarts  = fs.Int("restarts", 3, "independent search restarts (best kept)")
		workers   = fs.Int("workers", runtime.NumCPU(), "parallel search workers (results are identical for any count)")
		timeout   = fs.Duration("timeout", 0, "search deadline, e.g. 30s (0 = none; on expiry the best allocation so far is kept)")
		mode      = fs.String("mode", "salsa", "binding model: salsa, traditional, matching, or both")
		scheduler = fs.String("scheduler", "list", "scheduler: list (resource-constrained) or fds (force-directed)")
		verify    = fs.Bool("verify", true, "cross-check the allocation by cycle-accurate simulation")
		jsonMode  = fs.Bool("json", false, "emit the machine-readable result schema (same document salsad serves) instead of prose")
		remote    = fs.String("remote", "", "salsad base URL, e.g. http://127.0.0.1:8080: allocate via the service (retrying on transient failures) instead of locally; implies -json output")
		dotOut    = fs.String("dot", "", "write the CDFG in Graphviz DOT form to this file")
		jsonOut   = fs.String("dump-json", "", "write the CDFG in the hand-authorable JSON schema to this file")
		rtlOut    = fs.String("rtl", "", "write the structural RTL netlist to this file")
		verbose   = fs.Bool("v", false, "print the full binding (per-op FU, per-segment register)")
		chart     = fs.Bool("chart", false, "print register/FU occupancy charts and the mux summary")
		doPlace   = fs.Bool("place", false, "estimate layout: optimized 1-D module placement and wire length")
		area      = fs.Bool("area", false, "print the gate-equivalent area report (16-bit library)")
		simInputs = fs.String("sim", "", "simulate the datapath on comma-separated inputs/states, e.g. \"x=3,y=4\" (loops run 4 iterations)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "salsa:", err)
		return 1
	}

	g, err := loadGraph(*benchName, *cdfgPath)
	if err != nil {
		return fail(err)
	}

	if *jsonMode || *remote != "" {
		// Machine-readable mode: execute through the same request-level
		// path the salsad service uses, so `salsa -json` output is
		// byte-identical to a service response body for the same
		// request. Prose flags (-chart, -place, ...) are ignored here;
		// with -remote, -v reports the exchange's provenance (serving
		// shard, cache state, attempts) on stderr, keeping stdout
		// byte-identical either way.
		p := jsonParams{
			steps: *steps, pipelined: *pipelined, extraRegs: *extraRegs,
			fds:  strings.EqualFold(*scheduler, "fds"),
			mode: *mode, seed: *seed, restarts: *restarts,
			workers: *workers, timeout: *timeout, verify: *verify,
		}
		if *remote != "" {
			return runRemote(stdout, stderr, g, p, *remote, *verbose)
		}
		return runJSON(stdout, stderr, g, p)
	}

	fmt.Fprintln(stdout, g.Stats())

	if *dotOut != "" {
		if err := os.WriteFile(*dotOut, []byte(g.DOT()), 0o644); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "wrote %s\n", *dotOut)
	}
	if *jsonOut != "" {
		data, err := g.MarshalJSON()
		if err != nil {
			return fail(err)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "wrote %s\n", *jsonOut)
	}

	d := cdfg.DefaultDelays(*pipelined)
	cp := g.CriticalPath(d)
	T := *steps
	if T == 0 {
		T = cp + 2
	}
	if T < cp {
		return fail(fmt.Errorf("%d steps is below the critical path (%d)", T, cp))
	}
	var (
		a   *lifetime.Analysis
		lim sched.Limits
	)
	switch strings.ToLower(*scheduler) {
	case "list":
		a, lim, err = lifetime.MinFUAnalysis(g, d, T)
	case "fds":
		a, err = lifetime.RepairFDS(g, d, T)
		if err == nil {
			lim = a.Sched.MinLimits()
		}
	default:
		err = fmt.Errorf("unknown -scheduler %q", *scheduler)
	}
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "schedule: %d steps (critical path %d), %d ALUs, %d multipliers, min %d registers\n",
		T, cp, lim[sched.ClassALU], lim[sched.ClassMul], a.MinRegs)

	var inputs []string
	for i := range g.Nodes {
		if g.Nodes[i].Op == cdfg.Input {
			inputs = append(inputs, g.Nodes[i].Name)
		}
	}
	hw := datapath.NewHardware(lim, a.MinRegs+*extraRegs, inputs, true)

	engCfg := engine.Config{Workers: *workers, Timeout: *timeout}
	if *verbose {
		engCfg.Events = func(ev engine.Event) {
			if ev.Kind == engine.EventImproved {
				fmt.Fprintln(stdout, "   "+ev.String())
			}
		}
	}

	// runJobs fans the portfolio over the engine's worker pool; the
	// winner is deterministic for any -workers value.
	runJobs := func(name string, jobs []engine.Job) *core.Result {
		res, stats, err := engine.Run(context.Background(), a, hw, jobs, engCfg)
		if err != nil {
			fmt.Fprintf(stdout, "%-12s infeasible: %v\n", name+":", err)
			return nil
		}
		fmt.Fprintf(stdout, "%-12s %2d muxes (%2d merged), %2d registers, %d FUs; %d/%d moves accepted; init %d -> final %d\n",
			name+":", res.Cost.MuxCost, res.MergedMux, res.Cost.RegsUsed, res.Cost.FUsUsed,
			res.MovesAccepted, res.MovesTried, res.InitialCost.Total, res.Cost.Total)
		if *verbose {
			for _, jr := range stats.PerJob {
				switch {
				case jr.Err != nil:
					fmt.Fprintf(stdout, "%-12s   %-16s failed: %v\n", "", jr.Label, jr.Err)
				default:
					note := ""
					if jr.Pruned {
						note = " (pruned)"
					} else if jr.Cancelled {
						note = " (cancelled)"
					}
					fmt.Fprintf(stdout, "%-12s   %-16s best %3d (%2d merged) after %d trials%s\n",
						"", jr.Label, jr.Cost.Total, jr.Merged, jr.Trials, note)
				}
			}
			fmt.Fprintf(stdout, "%-12s %s\n", "", stats)
			if stats.BestJob >= 0 {
				fmt.Fprintf(stdout, "%-12s winner: job %d (%s)\n", "", stats.BestJob, stats.PerJob[stats.BestJob].Label)
			}
		}
		if len(res.Binding.Pass) > 0 || res.Binding.NumCopies() > 0 {
			fmt.Fprintf(stdout, "%-12s %d pass-throughs, %d value copies\n", "", len(res.Binding.Pass), res.Binding.NumCopies())
		}
		ba := res.IC.AllocateBuses()
		fmt.Fprintf(stdout, "%-12s bus-style alternative: %d buses, %d sink muxes, %d drivers\n",
			"", ba.Buses, ba.MuxCost, ba.Drivers)
		return res
	}
	runMode := func(name string, opts core.Options) *core.Result {
		return runJobs(name, engine.Restarts(opts, *restarts))
	}

	var final *core.Result
	switch strings.ToLower(*mode) {
	case "salsa":
		final = runMode("salsa", core.SALSAOptions(*seed))
	case "traditional":
		final = runMode("traditional", core.TraditionalOptions(*seed))
	case "matching":
		res, err := core.MatchingAllocate(a, hw, core.SALSAOptions(*seed).Cfg)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "%-12s %2d muxes (%2d merged), %2d registers (constructive bipartite matching)\n",
			"matching:", res.Cost.MuxCost, res.MergedMux, res.Cost.RegsUsed)
		final = res
	case "both":
		trad := runMode("traditional", core.TraditionalOptions(*seed))
		jobs := engine.Restarts(core.SALSAOptions(*seed), *restarts)
		if trad != nil {
			warm := core.SALSAOptions(*seed)
			warm.Initial = trad.Binding
			jobs = append(jobs, engine.Job{Label: "warm-start", Opts: warm})
		}
		final = runJobs("salsa", jobs)
	default:
		return fail(fmt.Errorf("unknown -mode %q", *mode))
	}
	if final == nil {
		return 1
	}

	if *verbose {
		printBinding(stdout, final)
	}
	if *chart {
		out, err := report.Full(final.Binding)
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, out)
	}
	if *area {
		r, err := library.Analyze(library.Default(), final.Binding)
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, r.String())
	}
	if *doPlace {
		pl := place.Linear(final.IC)
		var names []string
		for _, m := range pl.Order {
			if m.Kind == datapath.SrcFU {
				names = append(names, final.Binding.HW.FUs[m.Index].Name)
			} else {
				names = append(names, final.Binding.HW.Regs[m.Index].Name)
			}
		}
		fmt.Fprintf(stdout, "placement:   %s (wire length %d, %d improving swaps)\n",
			strings.Join(names, " | "), pl.WireLength, pl.Swaps)
	}

	if *verify {
		if err := verifyAllocation(final, g, *seed); err != nil {
			return fail(fmt.Errorf("verification FAILED: %w", err))
		}
		fmt.Fprintln(stdout, "verified: cycle-accurate simulation matches reference semantics")
	}

	if *simInputs != "" {
		env, err := parseEnv(*simInputs)
		if err != nil {
			return fail(err)
		}
		iters := 1
		if g.Cyclic {
			iters = 4
		}
		res, err := dpsim.Run(final.Binding, env, iters)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "simulation (%d iteration(s)):\n", iters)
		var names []string
		for name := range res.Outputs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(stdout, "  %s = %d\n", name, res.Outputs[name])
		}
	}

	if *rtlOut != "" {
		nl, err := rtl.Emit(final.Binding, strings.ReplaceAll(g.Name, "-", "_")+"_dp")
		if err != nil {
			return fail(err)
		}
		if err := os.WriteFile(*rtlOut, []byte(nl.Text), 0o644); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "wrote %s (%d FUs, %d registers, %d merged muxes)\n", *rtlOut, nl.FUs, nl.Regs, nl.Muxes)
	}
	return 0
}

// runRemote ships the allocation to a salsad service and prints the
// response body — the same ResultJSON document runJSON prints, served
// remotely. The client retries transient failures (connection errors,
// 408/429/5xx) with capped jittered backoff, honoring Retry-After.
// With verbose, the exchange's provenance goes to stderr: the serving
// shard and cache headers a cluster router adds (X-Salsa-Shard,
// X-Salsa-Cache) and the attempt count — stdout stays byte-identical.
func runRemote(stdout, stderr io.Writer, g *cdfg.Graph, p jsonParams, baseURL string, verbose bool) int {
	graphJSON, err := g.MarshalJSON()
	if err != nil {
		fmt.Fprintln(stderr, "salsa:", err)
		return 1
	}
	ar := &service.AllocateRequest{
		Graph:                graphJSON,
		Steps:                p.steps,
		PipelinedMultipliers: p.pipelined,
		ExtraRegisters:       p.extraRegs,
		ForceDirected:        p.fds,
		Mode:                 strings.ToLower(p.mode),
		Seed:                 p.seed,
		Restarts:             p.restarts,
		TimeoutMS:            p.timeout.Milliseconds(),
	}
	c := client.New(client.Config{BaseURL: strings.TrimRight(baseURL, "/"), Seed: p.seed})
	res, err := c.Do(context.Background(), ar)
	if err != nil {
		fmt.Fprintln(stderr, "salsa:", err)
		return 1
	}
	if verbose {
		shard, cache := res.Shard, res.Cache
		if shard == "" {
			shard = "direct"
		}
		if cache == "" {
			cache = "none"
		}
		fmt.Fprintf(stderr, "salsa: remote shard=%s cache=%s attempts=%d\n", shard, cache, res.Attempts)
	}
	fmt.Fprint(stdout, string(res.Body))
	return 0
}

// jsonParams carries the flag subset the -json path consumes.
type jsonParams struct {
	steps     int
	pipelined bool
	extraRegs int
	fds       bool
	mode      string
	seed      int64
	restarts  int
	workers   int
	timeout   time.Duration
	verify    bool
}

// runJSON executes the allocation through the request-level façade and
// prints the shared ResultJSON schema: the same bytes the salsad
// service would serve for an equivalent request body.
func runJSON(stdout, stderr io.Writer, g *cdfg.Graph, p jsonParams) int {
	req := salsa.Request{
		Graph: g,
		Params: salsa.Params{
			Steps:                p.steps,
			PipelinedMultipliers: p.pipelined,
			ExtraRegisters:       p.extraRegs,
			ForceDirected:        p.fds,
		},
		Mode:     strings.ToLower(p.mode),
		Seed:     p.seed,
		Restarts: p.restarts,
	}.Normalize()
	req.Engine.Workers = p.workers

	ctx := context.Background()
	if p.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.timeout)
		defer cancel()
	}
	des, res, stats, err := salsa.Execute(ctx, req)
	if err != nil {
		fmt.Fprintln(stderr, "salsa:", err)
		return 1
	}
	rj := salsa.BuildResultJSON(req.Graph, des.Steps(), req.Mode, req.Seed, req.Restarts, res, stats)
	body, err := json.Marshal(rj)
	if err != nil {
		fmt.Fprintln(stderr, "salsa:", err)
		return 1
	}
	if p.verify {
		if err := verifyAllocation(res, g, p.seed); err != nil {
			fmt.Fprintln(stderr, "salsa: verification FAILED:", err)
			return 1
		}
	}
	fmt.Fprintln(stdout, string(body))
	return 0
}

func loadGraph(bench, path string) (*cdfg.Graph, error) {
	switch {
	case bench != "" && path != "":
		return nil, fmt.Errorf("use either -bench or -cdfg, not both")
	case bench != "":
		build, ok := workloads.All()[strings.ToLower(bench)]
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", bench)
		}
		return build(), nil
	case path != "":
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return cdfg.ParseJSON(data)
	default:
		return nil, fmt.Errorf("specify -bench <name> or -cdfg <file>")
	}
}

func printBinding(stdout io.Writer, res *core.Result) {
	b := res.Binding
	g := b.A.Sched.G
	fmt.Fprintln(stdout, "operator bindings:")
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if !n.Op.IsArith() {
			continue
		}
		fmt.Fprintf(stdout, "  %-8s @%2d -> %s\n", n.Name, b.A.Sched.Start[i], b.HW.FUs[b.OpFU[i]].Name)
	}
	fmt.Fprintln(stdout, "value bindings:")
	for i := range b.A.Values {
		v := &b.A.Values[i]
		var segs []string
		for k := 0; k < v.Len; k++ {
			segs = append(segs, fmt.Sprintf("R%d", b.SegReg[i][k]))
		}
		fmt.Fprintf(stdout, "  %-8s born @%2d: %s\n", v.Name, v.Birth, strings.Join(segs, " "))
	}
}

func verifyAllocation(res *core.Result, g *cdfg.Graph, seed int64) error {
	env := cdfg.Env{}
	x := seed
	for i := range g.Nodes {
		switch g.Nodes[i].Op {
		case cdfg.Input, cdfg.State:
			x = x*6364136223846793005 + 1442695040888963407
			env[g.Nodes[i].Name] = (x >> 33) % 1000
		}
	}
	iters := 1
	if g.Cyclic {
		iters = 4
	}
	_, err := dpsim.Run(res.Binding, env, iters)
	return err
}

// parseEnv parses "a=1,b=-2" into an evaluation environment.
func parseEnv(s string) (cdfg.Env, error) {
	env := cdfg.Env{}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad -sim entry %q (want name=value)", kv)
		}
		var v int64
		if _, err := fmt.Sscanf(strings.TrimSpace(parts[1]), "%d", &v); err != nil {
			return nil, fmt.Errorf("bad -sim value in %q: %v", kv, err)
		}
		env[strings.TrimSpace(parts[0])] = v
	}
	return env, nil
}
