// Command salsad is the long-running allocation service: an HTTP/JSON
// daemon serving CDFG allocation requests from a deterministic pipeline
// with content-addressed result caching, singleflight deduplication,
// admission control, per-request deadlines (anytime partial results),
// live metrics, and graceful drain on SIGTERM.
//
// Endpoints:
//
//	POST /allocate   synchronous allocation (AllocateRequest JSON)
//	POST /jobs       asynchronous submission; answers 202 + job ID
//	GET  /jobs/{id}  job state, engine progress, result
//	GET  /metrics    Prometheus text format counters + histogram
//	GET  /healthz    liveness
//	GET  /readyz     readiness (503 while draining)
//	GET  /debug/vars expvar
//
// Usage:
//
//	salsad -addr :8080 -max-concurrent 4 -max-queue 64 -cache 256
//
// With -journal <dir>, async jobs are durable: every acceptance and
// terminal result is fsynced to a write-ahead log in <dir> before it
// is acknowledged, and a restart with the same directory replays it —
// finished jobs keep serving their exact bytes, in-flight jobs re-run
// (see internal/journal):
//
//	salsad -addr :8081 -journal /var/lib/salsad/journal
//
// With -route, the same binary boots as a stateless cluster router
// instead: it serves the identical API surface, but proxies every
// request to one of the listed backends using a consistent-hash ring
// keyed by the graph fingerprint (see internal/cluster):
//
//	salsad -route http://127.0.0.1:8081,http://127.0.0.1:8082
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"salsa/internal/cluster"
	"salsa/internal/journal"
	"salsa/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("salsad", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr          = fs.String("addr", ":8080", "listen address")
		cacheEntries  = fs.Int("cache", 256, "result cache capacity in entries (negative disables)")
		maxConcurrent = fs.Int("max-concurrent", 2, "maximum simultaneous engine runs")
		maxQueue      = fs.Int("max-queue", 64, "maximum requests waiting for an engine slot before 429")
		defTimeout    = fs.Duration("default-timeout", 30*time.Second, "search deadline for requests without timeout_ms")
		maxTimeout    = fs.Duration("max-timeout", 2*time.Minute, "upper clamp on request deadlines")
		workers       = fs.Int("engine-workers", 0, "engine workers per run (0 = GOMAXPROCS)")
		journalDir    = fs.String("journal", "", "write-ahead journal directory for durable async jobs (empty disables; replayed on boot)")
		drainTimeout  = fs.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight work on SIGTERM")
		route         = fs.String("route", "", "comma-separated backend base URLs; boots as a cluster router instead of a backend")
		probeInterval = fs.Duration("probe-interval", 500*time.Millisecond, "router: backend /readyz probe interval")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Both personalities expose the same lifecycle: an http.Handler plus
	// StartDrain (flip readiness off) and Drain (wait for in-flight work).
	var handler http.Handler
	var startDrain func()
	var drain func(context.Context) error
	role := "listening"
	if *route != "" {
		router, err := cluster.New(cluster.Config{
			Backends:      strings.Split(*route, ","),
			ProbeInterval: *probeInterval,
			CacheEntries:  *cacheEntries,
		})
		if err != nil {
			fmt.Fprintf(stderr, "salsad: %v\n", err)
			return 2
		}
		router.Start(ctx)
		handler, startDrain, drain = router.Handler(), router.StartDrain, router.Drain
		role = fmt.Sprintf("routing %d backends on", len(router.Healthy()))
	} else {
		cfg := service.Config{
			CacheEntries:   *cacheEntries,
			MaxConcurrent:  *maxConcurrent,
			MaxQueue:       *maxQueue,
			DefaultTimeout: *defTimeout,
			MaxTimeout:     *maxTimeout,
			EngineWorkers:  *workers,
		}
		if *journalDir != "" {
			jrn, err := journal.Open(*journalDir)
			if err != nil {
				fmt.Fprintf(stderr, "salsad: %v\n", err)
				return 2
			}
			defer jrn.Close()
			cfg.Journal = jrn
		}
		svc := service.New(cfg)
		if *journalDir != "" {
			if n := svc.MetricsSnapshot()["jobs_recovered_total"]; n > 0 {
				fmt.Fprintf(stdout, "salsad: journal %s replayed, %d jobs recovered\n", *journalDir, n)
			}
		}
		handler, startDrain, drain = svc.Handler(), svc.StartDrain, svc.Drain
	}
	srv := &http.Server{Addr: *addr, Handler: handler}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(stdout, "salsad: %s %s\n", role, *addr)

	select {
	case err := <-errc:
		fmt.Fprintf(stderr, "salsad: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(stdout, "salsad: signal received, draining")

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Flip readiness off first so a load balancer still probing /readyz
	// stops routing here, then stop the listener and wait for in-flight
	// HTTP exchanges (Shutdown) and async jobs (Drain).
	startDrain()
	code := 0
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "salsad: shutdown: %v\n", err)
		code = 1
	}
	if err := drain(dctx); err != nil {
		fmt.Fprintf(stderr, "salsad: %v\n", err)
		code = 1
	}
	fmt.Fprintln(stdout, "salsad: drained, exiting")
	return code
}
