// Command benchdiff summarizes and compares `go test -bench` output.
//
// It parses one or two benchmark logs (typically produced with
// -count N so each benchmark has several samples), reduces every
// benchmark to its per-metric median, and then:
//
//   - with -json FILE, writes a machine-readable summary of the new
//     log: benchmark name → median ns/op, allocs/op and B/op;
//   - with -old FILE, prints an old-vs-new comparison table and, for
//     every benchmark whose name matches -gate, fails (exit 1) when
//     median ns/op regressed by more than -max-regress percent.
//
// The CI benchmark job runs the suite on the pull request and on the
// merge base, then gates the PR with:
//
//	benchdiff -old base.txt -new pr.txt \
//	    -gate 'BenchmarkAllocateParallel_(EWF|DCT)_' -max-regress 10 \
//	    -json BENCH_incremental.json
//
// Exit codes: 0 ok, 1 gated regression, 2 usage or parse error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// sample is one benchmark line's measurements, keyed by unit
// ("ns/op", "B/op", "allocs/op", plus any custom -ReportMetric units).
type sample map[string]float64

// summary is one benchmark's median metrics across its samples.
type summary struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	Runs        int     `json:"runs"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		newPath    = fs.String("new", "", "benchmark log to summarize (required)")
		oldPath    = fs.String("old", "", "baseline benchmark log to compare against")
		jsonPath   = fs.String("json", "", "write the new log's median summary as JSON to this file ('-' for stdout)")
		gate       = fs.String("gate", "", "regexp of benchmark names the regression gate applies to (default: gate nothing)")
		maxRegress = fs.Float64("max-regress", 10, "fail when a gated benchmark's median ns/op regresses by more than this percent")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *newPath == "" {
		fmt.Fprintln(stderr, "benchdiff: -new is required")
		return 2
	}
	var gateRE *regexp.Regexp
	if *gate != "" {
		var err error
		if gateRE, err = regexp.Compile(*gate); err != nil {
			fmt.Fprintln(stderr, "benchdiff: bad -gate:", err)
			return 2
		}
	}

	newRuns, err := parseFile(*newPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	if len(newRuns) == 0 {
		fmt.Fprintf(stderr, "benchdiff: no benchmark results in %s\n", *newPath)
		return 2
	}
	newSum := summarize(newRuns)

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(newSum, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		buf = append(buf, '\n')
		if *jsonPath == "-" {
			if _, err := stdout.Write(buf); err != nil {
				fmt.Fprintln(stderr, "benchdiff:", err)
				return 2
			}
		} else if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
	}

	if *oldPath == "" {
		for _, name := range sortedNames(newSum) {
			s := newSum[name]
			fmt.Fprintf(stdout, "%-50s %14.0f ns/op %10.0f B/op %8.0f allocs/op (n=%d)\n",
				name, s.NsPerOp, s.BytesPerOp, s.AllocsPerOp, s.Runs)
		}
		return 0
	}

	oldRuns, err := parseFile(*oldPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	oldSum := summarize(oldRuns)

	regressed := false
	for _, name := range sortedNames(newSum) {
		n := newSum[name]
		o, ok := oldSum[name]
		if !ok || o.NsPerOp == 0 {
			fmt.Fprintf(stdout, "%-50s %14.0f ns/op  (new benchmark)\n", name, n.NsPerOp)
			continue
		}
		delta := (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		gated := gateRE != nil && gateRE.MatchString(name)
		verdict := ""
		if gated {
			verdict = "  [gated]"
			if delta > *maxRegress {
				verdict = fmt.Sprintf("  [REGRESSION > %.0f%%]", *maxRegress)
				regressed = true
			}
		}
		fmt.Fprintf(stdout, "%-50s %14.0f -> %14.0f ns/op  %+7.2f%%%s\n",
			name, o.NsPerOp, n.NsPerOp, delta, verdict)
	}
	if regressed {
		fmt.Fprintln(stdout, "benchdiff: gated benchmark regressed")
		return 1
	}
	return 0
}

// benchLine matches one result line of go test -bench output:
// name, iteration count, then value/unit pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// parseFile reads a go test -bench log and returns every sample per
// benchmark name, in file order. The -N GOMAXPROCS suffix is stripped
// so logs from differently-shaped runners compare by benchmark.
func parseFile(path string) (map[string][]sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f)
}

func parse(r io.Reader) (map[string][]sample, error) {
	out := make(map[string][]sample)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := trimProcs(m[1])
		fields := strings.Fields(m[3])
		s := sample{}
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad metric value %q", name, fields[i])
			}
			s[fields[i+1]] = v
		}
		if len(s) > 0 {
			out[name] = append(out[name], s)
		}
	}
	return out, sc.Err()
}

// trimProcs removes the -N GOMAXPROCS suffix from a benchmark name.
func trimProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// summarize reduces each benchmark's samples to their per-metric
// medians — the same robust center benchstat uses, so single-sample
// noise spikes in a -count run cannot flip the gate.
func summarize(runs map[string][]sample) map[string]summary {
	out := make(map[string]summary, len(runs))
	for name, ss := range runs {
		out[name] = summary{
			NsPerOp:     median(collect(ss, "ns/op")),
			AllocsPerOp: median(collect(ss, "allocs/op")),
			BytesPerOp:  median(collect(ss, "B/op")),
			Runs:        len(ss),
		}
	}
	return out
}

func collect(ss []sample, unit string) []float64 {
	var vs []float64
	for _, s := range ss {
		if v, ok := s[unit]; ok {
			vs = append(vs, v)
		}
	}
	return vs
}

// median returns the middle of the sorted values (mean of the two
// middles for even counts), or 0 for no values.
func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

func sortedNames(m map[string]summary) []string {
	names := make([]string, 0, len(m))
	//lint:maporder names are sorted before use
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
