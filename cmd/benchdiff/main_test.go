package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleLog = `goos: linux
goarch: amd64
pkg: salsa
cpu: Example CPU
BenchmarkAllocateParallel_EWF_W1-8   	       3	 100000000 ns/op	        24.00 muxes	         1.000 workers	 5000000 B/op	   60000 allocs/op
BenchmarkAllocateParallel_EWF_W1-8   	       3	 120000000 ns/op	        24.00 muxes	         1.000 workers	 5000100 B/op	   60010 allocs/op
BenchmarkAllocateParallel_EWF_W1-8   	       3	 110000000 ns/op	        24.00 muxes	         1.000 workers	 5000200 B/op	   60020 allocs/op
BenchmarkDeltaEvalEWF-8              	 1000000	      1100 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	salsa	10.0s
`

func writeLog(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseStripsProcsAndCollectsSamples(t *testing.T) {
	runs, err := parse(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	ss, ok := runs["BenchmarkAllocateParallel_EWF_W1"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped; have keys %v", runs)
	}
	if len(ss) != 3 {
		t.Fatalf("got %d samples, want 3 (one per -count run)", len(ss))
	}
	if ss[1]["ns/op"] != 120000000 {
		t.Errorf("ns/op of second sample = %v, want 120000000", ss[1]["ns/op"])
	}
	if ss[0]["muxes"] != 24 {
		t.Errorf("custom metric lost: muxes = %v, want 24", ss[0]["muxes"])
	}
}

func TestSummarizeTakesMedians(t *testing.T) {
	runs, err := parse(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	sum := summarize(runs)
	s := sum["BenchmarkAllocateParallel_EWF_W1"]
	if s.NsPerOp != 110000000 {
		t.Errorf("median ns/op = %v, want 110000000", s.NsPerOp)
	}
	if s.BytesPerOp != 5000100 || s.AllocsPerOp != 60010 {
		t.Errorf("median B/op, allocs/op = %v, %v; want 5000100, 60010", s.BytesPerOp, s.AllocsPerOp)
	}
	if s.Runs != 3 {
		t.Errorf("runs = %d, want 3", s.Runs)
	}
}

func TestMedianEvenCount(t *testing.T) {
	if got := median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("median of 1..4 = %v, want 2.5", got)
	}
	if got := median(nil); got != 0 {
		t.Errorf("median of nothing = %v, want 0", got)
	}
}

func TestJSONEmission(t *testing.T) {
	logPath := writeLog(t, "new.txt", sampleLog)
	jsonPath := filepath.Join(t.TempDir(), "BENCH_incremental.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-new", logPath, "-json", jsonPath}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]summary
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("emitted JSON invalid: %v", err)
	}
	if got["BenchmarkDeltaEvalEWF"].NsPerOp != 1100 {
		t.Errorf("DeltaEval ns/op = %v, want 1100", got["BenchmarkDeltaEvalEWF"].NsPerOp)
	}
	if got["BenchmarkAllocateParallel_EWF_W1"].NsPerOp != 110000000 {
		t.Errorf("EWF ns/op = %v, want median 110000000", got["BenchmarkAllocateParallel_EWF_W1"].NsPerOp)
	}
}

// gateLog rewrites the sample log's EWF timings scaled by the factor,
// simulating a PR run against a baseline.
func gateLog(scale float64) string {
	r := strings.NewReplacer(
		"100000000 ns/op", fmt.Sprintf("%d ns/op", int64(100000000*scale)),
		"120000000 ns/op", fmt.Sprintf("%d ns/op", int64(120000000*scale)),
		"110000000 ns/op", fmt.Sprintf("%d ns/op", int64(110000000*scale)),
	)
	return r.Replace(sampleLog)
}

func TestGatePassesWithinThreshold(t *testing.T) {
	oldPath := writeLog(t, "old.txt", sampleLog)
	newPath := writeLog(t, "new.txt", gateLog(1.05)) // +5% < 10%
	var out, errb bytes.Buffer
	code := run([]string{"-old", oldPath, "-new", newPath,
		"-gate", "BenchmarkAllocateParallel_(EWF|DCT)_", "-max-regress", "10"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d for +5%% on a 10%% gate; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "[gated]") {
		t.Errorf("comparison did not mark the gated benchmark:\n%s", out.String())
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	oldPath := writeLog(t, "old.txt", sampleLog)
	newPath := writeLog(t, "new.txt", gateLog(1.25)) // +25% > 10%
	var out, errb bytes.Buffer
	code := run([]string{"-old", oldPath, "-new", newPath,
		"-gate", "BenchmarkAllocateParallel_(EWF|DCT)_", "-max-regress", "10"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d for +25%% on a 10%% gate, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("regression not reported:\n%s", out.String())
	}
}

func TestGateIgnoresUngatedRegression(t *testing.T) {
	// DeltaEval regresses wildly but is outside the gate expression.
	oldPath := writeLog(t, "old.txt", sampleLog)
	slow := strings.Replace(sampleLog, "1100 ns/op", "9900 ns/op", 1)
	newPath := writeLog(t, "new.txt", slow)
	var out, errb bytes.Buffer
	code := run([]string{"-old", oldPath, "-new", newPath,
		"-gate", "BenchmarkAllocateParallel_(EWF|DCT)_", "-max-regress", "10"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, want 0: ungated benchmarks must not trip the gate; output:\n%s", code, out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("missing -new: exit %d, want 2", code)
	}
	logPath := writeLog(t, "new.txt", sampleLog)
	if code := run([]string{"-new", logPath, "-gate", "("}, &out, &errb); code != 2 {
		t.Errorf("bad -gate regexp: exit %d, want 2", code)
	}
	empty := writeLog(t, "empty.txt", "PASS\nok salsa 1s\n")
	if code := run([]string{"-new", empty}, &out, &errb); code != 2 {
		t.Errorf("no benchmarks: exit %d, want 2", code)
	}
}
