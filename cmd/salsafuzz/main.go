// Command salsafuzz drives the differential allocation oracle
// (internal/crosscheck) over a range of generator seeds: each seed
// becomes a random scheduled CDFG that is allocated under both binding
// models, re-checked for legality and cost, simulated cycle-accurately,
// re-simulated from emitted RTL, and re-run under a different engine
// worker count. Any divergence is a finding; the process exits 1 if any
// seed produced one, 0 otherwise.
//
// Usage:
//
//	salsafuzz -seeds 1000 -seed-start 1
//	salsafuzz -seeds 200 -json -shrink > findings.jsonl
//	salsafuzz -seeds 50 -inject seg-alias -shrink   # demonstrate the oracle
//
// Output is deterministic: the same seeds and flags produce
// byte-identical output (including -json) for any -workers value,
// because every report is a pure function of (seed, config) and
// results are emitted in seed order.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"

	"salsa/internal/crosscheck"
	"salsa/internal/randgraph"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("salsafuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seeds     = fs.Int("seeds", 100, "number of seeds to crosscheck")
		seedStart = fs.Int64("seed-start", 1, "first seed of the range")
		jsonOut   = fs.Bool("json", false, "emit one JSON report per seed on stdout (stable byte-for-byte)")
		shrink    = fs.Bool("shrink", false, "minimize each finding before reporting it")
		workers   = fs.Int("workers", runtime.NumCPU(), "seeds crosschecked in parallel (output is identical for any count)")
		inject    = fs.String("inject", "", fmt.Sprintf("plant a fault into every extended binding to demonstrate the oracle; one of %v", crosscheck.FaultKinds()))
		simIters  = fs.Int("sim-iters", 0, "loop iterations simulated per cyclic case (0 = oracle default)")
		incr      = fs.Bool("incremental", true, "re-run each portfolio on the legacy clone-and-reevaluate path and require a byte-identical winner")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *seeds <= 0 {
		fmt.Fprintln(stderr, "salsafuzz: -seeds must be positive")
		return 2
	}
	cfg := crosscheck.Config{SimIters: *simIters, DisableIncremental: !*incr}
	if *inject != "" {
		f, err := crosscheck.InjectFault(*inject)
		if err != nil {
			fmt.Fprintln(stderr, "salsafuzz:", err)
			return 2
		}
		cfg.Inject = f
	}

	reports := crosscheckAll(cfg, *seedStart, *seeds, *workers, *shrink, stderr)

	var ok, infeasible, findings int
	for _, rep := range reports {
		switch rep.Status {
		case crosscheck.StatusOK:
			ok++
		case crosscheck.StatusInfeasible:
			infeasible++
		case crosscheck.StatusFinding:
			findings++
		}
		if *jsonOut {
			line, err := json.Marshal(rep)
			if err != nil {
				fmt.Fprintln(stderr, "salsafuzz: marshalling report:", err)
				return 2
			}
			fmt.Fprintln(stdout, string(line))
		} else if rep.Status == crosscheck.StatusFinding {
			fmt.Fprintf(stdout, "FINDING seed %d (%s, %d ops, %d steps): [%s] %s\n",
				rep.Seed, rep.Name, rep.Ops, rep.Steps, rep.Stage, rep.Detail)
			if rep.Shrunk != nil {
				fmt.Fprintf(stdout, "  shrunk to %d ops / %d nodes / %d steps (+%d regs) in %d attempts: [%s] %s\n",
					rep.Shrunk.Ops, rep.Shrunk.Nodes, rep.Shrunk.Steps, rep.Shrunk.ExtraRegs,
					rep.Shrunk.Attempts, rep.Shrunk.Stage, rep.Shrunk.Detail)
				fmt.Fprintf(stdout, "  replay graph: %s\n", rep.Shrunk.GraphJSON)
			}
		}
	}

	summary := fmt.Sprintf("salsafuzz: %d seeds starting at %d: %d ok, %d infeasible, %d findings",
		*seeds, *seedStart, ok, infeasible, findings)
	if *jsonOut {
		// Keep stdout pure JSONL; the summary is operator feedback.
		fmt.Fprintln(stderr, summary)
	} else {
		fmt.Fprintln(stdout, summary)
	}
	if findings > 0 {
		return 1
	}
	return 0
}

// crosscheckAll fans the seed range over a worker pool and returns the
// reports in seed order. Each report is a pure function of its seed and
// the config, so the worker count never changes the result, only the
// wall-clock time.
func crosscheckAll(cfg crosscheck.Config, start int64, n, workers int, shrink bool, stderr io.Writer) []*crosscheck.Report {
	if workers < 1 {
		workers = 1
	}
	reports := make([]*crosscheck.Report, n)
	var next int64 // atomically claimed index, via the mutex below
	var mu sync.Mutex
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(n) {
			return -1
		}
		next++
		return int(next - 1)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i < 0 {
					return
				}
				seed := start + int64(i)
				rep := cfg.RunSeed(seed)
				if rep.Status == crosscheck.StatusFinding && shrink {
					attachShrunk(cfg, seed, rep, stderr, &mu)
				}
				reports[i] = rep
			}
		}()
	}
	wg.Wait()
	return reports
}

// attachShrunk minimizes one finding and attaches the result to its
// report. Shrink failures (a marshalling error on the minimized graph)
// are reported but do not mask the finding itself.
func attachShrunk(cfg crosscheck.Config, seed int64, rep *crosscheck.Report, stderr io.Writer, mu *sync.Mutex) {
	cs := randgraph.Generate(seed, cfg.Gen)
	min, minRep, attempts := cfg.Shrink(seed, cs, 0)
	if minRep == nil {
		return // raced into a pass; keep the original finding unshrunk
	}
	info, err := crosscheck.ShrunkInfo(min, minRep, attempts)
	if err != nil {
		mu.Lock()
		fmt.Fprintf(stderr, "salsafuzz: seed %d: shrink: %v\n", seed, err)
		mu.Unlock()
		return
	}
	rep.Shrunk = info
}
