package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"salsa/internal/crosscheck"
)

// TestCleanTreeExitsZero is the driver-level acceptance check: on a
// healthy tree a seed sweep reports no findings and exits 0.
func TestCleanTreeExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-seeds", "30"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "0 findings") {
		t.Errorf("summary missing from output: %q", out.String())
	}
}

// TestJSONByteIdenticalAcrossWorkers pins the determinism acceptance
// criterion: same seeds and flags, different -workers, byte-identical
// -json stdout.
func TestJSONByteIdenticalAcrossWorkers(t *testing.T) {
	outputs := make([]string, 0, 3)
	for _, workers := range []string{"1", "3", "8"} {
		var out, errb bytes.Buffer
		if code := run([]string{"-seeds", "25", "-seed-start", "11", "-json", "-workers", workers}, &out, &errb); code != 0 {
			t.Fatalf("workers=%s: exit %d\nstderr:\n%s", workers, code, errb.String())
		}
		outputs = append(outputs, out.String())
	}
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Fatalf("-json output differs between worker counts:\n%s\nvs\n%s", outputs[0], outputs[i])
		}
	}
	// Every line must be a parseable report, in ascending seed order.
	lines := strings.Split(strings.TrimSpace(outputs[0]), "\n")
	if len(lines) != 25 {
		t.Fatalf("got %d JSON lines, want 25", len(lines))
	}
	for i, line := range lines {
		var rep crosscheck.Report
		if err := json.Unmarshal([]byte(line), &rep); err != nil {
			t.Fatalf("line %d is not a report: %v", i, err)
		}
		if want := int64(11 + i); rep.Seed != want {
			t.Fatalf("line %d has seed %d, want %d", i, rep.Seed, want)
		}
	}
}

// TestInjectedFaultFailsAndShrinks demonstrates the oracle end to end:
// a planted legality bug must flip the exit code to 1 and -shrink must
// minimize at least one finding to a small replayable graph.
func TestInjectedFaultFailsAndShrinks(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-seeds", "20", "-json", "-shrink", "-inject", "seg-alias"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1 with an injected fault\nstderr:\n%s", code, errb.String())
	}
	shrunk := 0
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		var rep crosscheck.Report
		if err := json.Unmarshal([]byte(line), &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Status != crosscheck.StatusFinding || rep.Shrunk == nil {
			continue
		}
		shrunk++
		if rep.Shrunk.Ops > 8 {
			t.Errorf("seed %d shrunk to %d ops, want <= 8", rep.Seed, rep.Shrunk.Ops)
		}
		if rep.Shrunk.GraphJSON == "" {
			t.Errorf("seed %d: shrunk report lacks a replay graph", rep.Seed)
		}
	}
	if shrunk == 0 {
		t.Fatal("no finding was shrunk")
	}
}

// TestBadFlags pins the distinct exit code for operator errors.
func TestBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-inject", "no-such-fault"}, &out, &errb); code != 2 {
		t.Errorf("unknown -inject: exit %d, want 2", code)
	}
	if code := run([]string{"-seeds", "0"}, &out, &errb); code != 2 {
		t.Errorf("-seeds 0: exit %d, want 2", code)
	}
}
