// Command tables regenerates the paper's evaluation tables and figure
// demonstrations:
//
//	tables -table 2        # Table 2: EWF under 5 schedules × register budgets
//	tables -table 3        # Table 3: DCT under 4 schedules
//	tables -table ablation # feature knockouts on EWF@19
//	tables -table figures  # Figures 3 and 4 mechanism demos
//	tables -table all -full
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"salsa/internal/experiments"
)

func main() {
	var (
		table   = flag.String("table", "all", "which table: 2, 3, ablation, sched, baselines, figures, all")
		full    = flag.Bool("full", false, "full search effort (slower, better allocations)")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "parallel search workers (0 = all CPUs; results are identical for any count)")
	)
	flag.Parse()

	cfg := experiments.Quick(*seed)
	if *full {
		cfg = experiments.Full(*seed)
	}
	cfg.Workers = *workers

	run := func(name string, f func() error) {
		t0 := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "tables: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %.1fs)\n\n", name, time.Since(t0).Seconds())
	}

	want := func(name string) bool { return *table == "all" || *table == name }

	if want("2") {
		run("table 2", func() error {
			rows, err := experiments.Table2(cfg)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTable("Table 2 — Elliptic Wave Filter (paper Table 2)", rows))
			return nil
		})
	}
	if want("3") {
		run("table 3", func() error {
			rows, err := experiments.Table3(cfg)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTable("Table 3 — Discrete Cosine Transform (paper Table 3)", rows))
			return nil
		})
	}
	if want("ablation") {
		run("ablation", func() error {
			rows, err := experiments.Ablation(cfg)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatAblation(rows))
			return nil
		})
	}
	if want("sched") {
		run("scheduler study", func() error {
			rows, err := experiments.SchedulerStudy(cfg)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatSchedulerStudy(rows))
			return nil
		})
	}
	if want("baselines") {
		run("allocator study", func() error {
			rows, err := experiments.BaselineStudy(cfg)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatBaselineStudy(rows))
			return nil
		})
	}
	if want("figures") {
		run("figures", func() error {
			demos, err := experiments.Demos()
			if err != nil {
				return err
			}
			for _, d := range demos {
				fmt.Print(experiments.FormatDemo(d))
			}
			row, err := experiments.Figure12(cfg)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTable("Figures 1/2 — binding models on the intro CDFG", []experiments.Row{row}))
			return nil
		})
	}
}
