package salsa

import (
	"context"
	"fmt"

	"salsa/internal/cdfg"
	"salsa/internal/core"
)

// Request bundles one complete allocation ask — graph, schedule
// parameters and search configuration — into a single value the serving
// layer (internal/service) and the CLI can execute and cache uniformly.
// Allocation is a deterministic function of a normalized Request (minus
// the engine's worker count and deadline), which is what makes results
// content-addressable.
type Request struct {
	Graph  *cdfg.Graph
	Params Params

	// Mode selects the binding model: "salsa" (the extended model,
	// default) or "traditional" (the whole-lifetime baseline).
	Mode string
	// Seed seeds the restart portfolio; 0 means 1.
	Seed int64
	// Restarts is the portfolio width; 0 means 3.
	Restarts int

	// Engine tunes the run without affecting the canonical result
	// (workers) or truncating it (timeout → partial result).
	Engine EngineConfig
}

// Normalize returns the request with defaults applied. Two requests
// with equal normalized (Graph, Params, Mode, Seed, Restarts) produce
// byte-identical complete results, whatever their Engine configs.
func (r Request) Normalize() Request {
	if r.Mode == "" {
		r.Mode = "salsa"
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Restarts <= 0 {
		r.Restarts = 3
	}
	return r
}

// options maps the request's mode to core search options.
func (r Request) options() (Options, error) {
	switch r.Mode {
	case "salsa":
		return SALSAOptions(r.Seed), nil
	case "traditional":
		return TraditionalOptions(r.Seed), nil
	default:
		return Options{}, fmt.Errorf("salsa: unknown mode %q (want salsa or traditional)", r.Mode)
	}
}

// Execute compiles the request's graph and runs its restart portfolio
// on the parallel engine. Cancelling ctx (or the Engine timeout) stops
// the search and returns the best allocation found so far — the anytime
// result callers report as partial.
func Execute(ctx context.Context, req Request) (*Design, *Result, *Stats, error) {
	req = req.Normalize()
	opts, err := req.options()
	if err != nil {
		return nil, nil, nil, err
	}
	des, err := Compile(req.Graph, req.Params)
	if err != nil {
		return nil, nil, nil, err
	}
	res, stats, err := des.AllocatePortfolio(ctx, Restarts(opts, req.Restarts), req.Engine)
	if err != nil {
		return des, nil, stats, err
	}
	return des, res, stats, nil
}

// CostJSON is the wire form of a binding cost breakdown.
type CostJSON struct {
	FUs       int `json:"fus"`
	FUArea    int `json:"fu_area"`
	Registers int `json:"registers"`
	Mux       int `json:"mux"`
	Total     int `json:"total"`
}

// ResultJSON is the machine-readable allocation result schema shared by
// the salsad service and `salsa -json`, so CLI and service outputs are
// directly diffable. It deliberately carries no wall-clock or
// host-dependent fields: a complete (non-partial) ResultJSON is a
// deterministic function of the request.
type ResultJSON struct {
	Graph       string `json:"graph"`
	Fingerprint string `json:"fingerprint"`
	Mode        string `json:"mode"`
	Seed        int64  `json:"seed"`
	Restarts    int    `json:"restarts"`
	Steps       int    `json:"steps"`

	Cost         CostJSON `json:"cost"`
	MergedMux    int      `json:"merged_mux"`
	PassThroughs int      `json:"pass_throughs"`
	Copies       int      `json:"copies"`

	Trials        int    `json:"trials"`
	MovesTried    int    `json:"moves_tried"`
	MovesAccepted int    `json:"moves_accepted"`
	InitialCost   int    `json:"initial_cost"`
	Stop          string `json:"stop"`

	// Partial marks a result truncated by a deadline: legal and
	// Check-valid, but not the canonical full-portfolio result (and
	// therefore never cached by the service).
	Partial bool `json:"partial"`
}

// BuildResultJSON assembles the shared result schema from a finished
// allocation. stats may be nil (e.g. the constructive matching path);
// the result counts as partial when its own search was cancelled or any
// portfolio job was cut off by the deadline.
func BuildResultJSON(g *cdfg.Graph, steps int, mode string, seed int64, restarts int, res *Result, stats *Stats) ResultJSON {
	partial := res.Stop == core.StopCancelled
	if stats != nil && stats.Cancelled > 0 {
		partial = true
	}
	return ResultJSON{
		Graph:       g.Name,
		Fingerprint: g.Fingerprint(),
		Mode:        mode,
		Seed:        seed,
		Restarts:    restarts,
		Steps:       steps,
		Cost: CostJSON{
			FUs:       res.Cost.FUsUsed,
			FUArea:    res.Cost.FUArea,
			Registers: res.Cost.RegsUsed,
			Mux:       res.Cost.MuxCost,
			Total:     res.Cost.Total,
		},
		MergedMux:     res.MergedMux,
		PassThroughs:  len(res.Binding.Pass),
		Copies:        res.Binding.NumCopies(),
		Trials:        res.Trials,
		MovesTried:    res.MovesTried,
		MovesAccepted: res.MovesAccepted,
		InitialCost:   res.InitialCost.Total,
		Stop:          res.Stop.String(),
		Partial:       partial,
	}
}
