package salsa_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"salsa/internal/cdfg"
	"salsa/internal/workloads"
)

// TestCorpusMatchesBuilders keeps the JSON corpus in testdata/ in lock
// step with the benchmark constructors: every file must parse back to a
// graph with identical serialized form. Regenerate with
// `go run ./cmd/gen-testdata` after changing a benchmark.
func TestCorpusMatchesBuilders(t *testing.T) {
	for name, build := range workloads.All() {
		path := filepath.Join("testdata", name+".json")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("%s: %v (regenerate with go run ./cmd/gen-testdata)", name, err)
			continue
		}
		want, err := build().MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, '\n')
		if !bytes.Equal(data, want) {
			t.Errorf("%s: corpus file out of date (regenerate with go run ./cmd/gen-testdata)", name)
		}
		g, err := cdfg.ParseJSON(data)
		if err != nil {
			t.Errorf("%s: corpus does not parse: %v", name, err)
			continue
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: parsed corpus invalid: %v", name, err)
		}
	}
}

// TestCorpusBehaviouralEquivalence checks parsed corpus graphs compute
// exactly what the builders compute.
func TestCorpusBehaviouralEquivalence(t *testing.T) {
	for name, build := range workloads.All() {
		data, err := os.ReadFile(filepath.Join("testdata", name+".json"))
		if err != nil {
			t.Skip("corpus missing; run go run ./cmd/gen-testdata")
		}
		g1 := build()
		g2, err := cdfg.ParseJSON(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		env := cdfg.Env{}
		for i := range g1.Nodes {
			switch g1.Nodes[i].Op {
			case cdfg.Input, cdfg.State:
				env[g1.Nodes[i].Name] = int64(3*i + 1)
			}
		}
		r1, err := g1.Eval(env)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r2, err := g2.Eval(env)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for k, v := range r1.Outputs {
			if r2.Outputs[k] != v {
				t.Errorf("%s: output %s differs: %d vs %d", name, k, v, r2.Outputs[k])
			}
		}
		for k, v := range r1.NextState {
			if r2.NextState[k] != v {
				t.Errorf("%s: state %s differs", name, k)
			}
		}
	}
}
